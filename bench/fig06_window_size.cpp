// Figure 6 + §4.1.2: throughput for different SMC ring-buffer window sizes
// when all nodes send continuously; plus the memory-footprint accounting
// n * w * (m + trailer).
//
// Paper headlines: even w=5 beats the baseline-with-w=100 by ~4.5X; the
// best performance is at w=100; w=500/1000 start declining after 10 nodes
// (polling area too large, 2MB sequential batch sends). NOTE (documented in
// EXPERIMENTS.md): in our simulation large windows plateau rather than
// decline — the NIC stays the binding resource; latency, however, degrades
// sharply, supporting the same w~100 recommendation.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  // Baseline reference at w=100 for the "4.5X even at w=5" comparison.
  ExperimentConfig base;
  base.nodes = 16;
  base.senders = SenderPattern::all;
  base.message_size = 10240;
  base.messages_per_sender = scaled(200);
  base.opts = core::ProtocolOptions::baseline();
  const double baseline_gbps = workload::run_experiment(base).throughput_gbps;

  Table t("Figure 6: window size sweep (all senders, 10KB, batching)",
          {"nodes", "window", "GB/s", "latency (us)", "vs baseline w=100"});
  for (std::size_t n : {std::size_t{4}, std::size_t{10}, std::size_t{16}}) {
    for (std::uint32_t w : {5u, 10u, 50u, 100u, 500u, 1000u}) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = SenderPattern::all;
      cfg.message_size = 10240;
      cfg.messages_per_sender = scaled(400);
      cfg.opts = core::ProtocolOptions::spindle();
      cfg.opts.window_size = w;
      auto r = workload::run_experiment(cfg);
      t.row({Table::integer(n), Table::integer(w), gbps(r.throughput_gbps),
             Table::num(r.median_latency_us, 0),
             n == 16 ? Table::num(r.throughput_gbps / baseline_gbps, 1) + "x"
                     : ""});
    }
  }
  t.print();

  Table m("Sec 4.1.2: SMC memory per subgroup, n * w * (m + 16B trailer)",
          {"nodes", "window", "msg size", "memory (MB)", "paper"});
  for (std::uint32_t w : {100u, 1000u}) {
    const double mb = 16.0 * w * (10240 + 16) / 1048576.0;
    m.row({"16", Table::integer(w), "10KB", Table::num(mb, 1),
           w == 100 ? "~16MB: tens of subgroups fit in a few hundred MB"
                    : ""});
  }
  m.print();
  return 0;
}
