// Recovery-time bench: crash one member of a group under continuous load
// and measure the unavailability window the view change imposes — failure
// detection (the heartbeat timeout dominates), wedge-to-install, and the
// first post-install delivery — plus the throughput dip at a surviving
// observer. Sweeps the failure timeout, the group size, and the victim
// role (leader vs. follower).

#include <cstdio>

#include "bench_util.hpp"
#include "workload/recovery.hpp"
#include "workload/table.hpp"

namespace {

using spindle::workload::RecoveryConfig;
using spindle::workload::RecoveryResult;
using spindle::workload::Table;
using spindle::workload::run_recovery;

std::string us(spindle::sim::Nanos ns) {
  return Table::num(static_cast<double>(ns) / 1000.0, 1);
}

void record(spindle::bench::BenchReport& report, const std::string& label,
            const RecoveryResult& r) {
  report.add_metric(label + "/detect_us",
                    static_cast<double>(r.detect_ns) / 1e3);
  report.add_metric(label + "/install_us",
                    static_cast<double>(r.install_ns) / 1e3);
  report.add_metric(label + "/post_mmps", r.post_mmps);
}

}  // namespace

int main() {
  spindle::bench::BenchReport report("recovery_fault");
  {
    // Continuous-load scenario: the message count is horizon / send period.
    const RecoveryConfig base;
    report.set_provenance(
        base.seed,
        static_cast<std::uint64_t>(base.horizon / base.send_interval));
  }
  {
    Table t("Recovery vs. failure timeout (4 nodes, follower crash)",
            {"timeout_us", "detect_us", "install_us", "first_delv_us",
             "max_gap_us", "pre_Mmsg_s", "post_Mmsg_s"});
    for (const spindle::sim::Nanos timeout :
         {spindle::sim::micros(100), spindle::sim::micros(200),
          spindle::sim::micros(400), spindle::sim::micros(800),
          spindle::sim::micros(1600)}) {
      RecoveryConfig cfg;
      cfg.failure_timeout = timeout;
      const RecoveryResult r = run_recovery(cfg);
      record(report, "timeout_us_" + us(timeout), r);
      t.row({us(timeout), us(r.detect_ns), us(r.install_ns),
             us(r.first_delivery_ns), us(r.max_gap_ns),
             Table::num(r.pre_mmps, 2), Table::num(r.post_mmps, 2)});
    }
    t.print();
  }

  {
    Table t("Recovery vs. group size (400us timeout, follower crash)",
            {"nodes", "detect_us", "install_us", "first_delv_us",
             "max_gap_us", "pre_Mmsg_s", "post_Mmsg_s"});
    for (const std::size_t nodes : {3, 4, 6, 8}) {
      RecoveryConfig cfg;
      cfg.nodes = nodes;
      cfg.victim = static_cast<spindle::net::NodeId>(nodes - 1);
      const RecoveryResult r = run_recovery(cfg);
      record(report, "nodes_" + std::to_string(nodes), r);
      t.row({Table::integer(nodes), us(r.detect_ns), us(r.install_ns),
             us(r.first_delivery_ns), us(r.max_gap_ns),
             Table::num(r.pre_mmps, 2), Table::num(r.post_mmps, 2)});
    }
    t.print();
  }

  {
    Table t("Recovery vs. victim role (4 nodes, 400us timeout)",
            {"victim", "detect_us", "install_us", "first_delv_us",
             "max_gap_us", "post_Mmsg_s"});
    for (const spindle::net::NodeId victim : {0, 1, 3}) {
      RecoveryConfig cfg;
      cfg.victim = victim;
      const RecoveryResult r = run_recovery(cfg);
      record(report, victim == 0 ? "leader" : "node" + std::to_string(victim),
             r);
      t.row({victim == 0 ? "leader" : "node" + std::to_string(victim),
             us(r.detect_ns), us(r.install_ns), us(r.first_delivery_ns),
             us(r.max_gap_ns), Table::num(r.post_mmps, 2)});
    }
    t.print();
  }
  report.write();
  return 0;
}
