// Recovery-time bench: crash one member of a group under continuous load
// and measure the unavailability window the view change imposes — failure
// detection (the heartbeat timeout dominates), wedge-to-install, and the
// first post-install delivery — plus the throughput dip at a surviving
// observer. Sweeps the failure timeout, the group size, and the victim
// role (leader vs. follower).

#include <cstdio>

#include "workload/recovery.hpp"
#include "workload/table.hpp"

namespace {

using spindle::workload::RecoveryConfig;
using spindle::workload::RecoveryResult;
using spindle::workload::Table;
using spindle::workload::run_recovery;

std::string us(spindle::sim::Nanos ns) {
  return Table::num(static_cast<double>(ns) / 1000.0, 1);
}

}  // namespace

int main() {
  {
    Table t("Recovery vs. failure timeout (4 nodes, follower crash)",
            {"timeout_us", "detect_us", "install_us", "first_delv_us",
             "max_gap_us", "pre_Mmsg_s", "post_Mmsg_s"});
    for (const spindle::sim::Nanos timeout :
         {spindle::sim::micros(100), spindle::sim::micros(200),
          spindle::sim::micros(400), spindle::sim::micros(800),
          spindle::sim::micros(1600)}) {
      RecoveryConfig cfg;
      cfg.failure_timeout = timeout;
      const RecoveryResult r = run_recovery(cfg);
      t.row({us(timeout), us(r.detect_ns), us(r.install_ns),
             us(r.first_delivery_ns), us(r.max_gap_ns),
             Table::num(r.pre_mmps, 2), Table::num(r.post_mmps, 2)});
    }
    t.print();
  }

  {
    Table t("Recovery vs. group size (400us timeout, follower crash)",
            {"nodes", "detect_us", "install_us", "first_delv_us",
             "max_gap_us", "pre_Mmsg_s", "post_Mmsg_s"});
    for (const std::size_t nodes : {3, 4, 6, 8}) {
      RecoveryConfig cfg;
      cfg.nodes = nodes;
      cfg.victim = static_cast<spindle::net::NodeId>(nodes - 1);
      const RecoveryResult r = run_recovery(cfg);
      t.row({Table::integer(nodes), us(r.detect_ns), us(r.install_ns),
             us(r.first_delivery_ns), us(r.max_gap_ns),
             Table::num(r.pre_mmps, 2), Table::num(r.post_mmps, 2)});
    }
    t.print();
  }

  {
    Table t("Recovery vs. victim role (4 nodes, 400us timeout)",
            {"victim", "detect_us", "install_us", "first_delv_us",
             "max_gap_us", "post_Mmsg_s"});
    for (const spindle::net::NodeId victim : {0, 1, 3}) {
      RecoveryConfig cfg;
      cfg.victim = victim;
      const RecoveryResult r = run_recovery(cfg);
      t.row({victim == 0 ? "leader" : "node" + std::to_string(victim),
             us(r.detect_ns), us(r.install_ns), us(r.first_delivery_ns),
             us(r.max_gap_ns), Table::num(r.post_mmps, 2)});
    }
    t.print();
  }
  return 0;
}
