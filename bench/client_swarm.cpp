// Front-tier client swarm (§4.6's external clients, scaled out): two relay
// members each carry a ClientMux with 1000 open-loop sessions, and the
// offered request rate sweeps across the saturation knee. Below the knee
// goodput tracks the offered load and tail latency is flat; past it the
// credit pool pins goodput at pipeline capacity, parked requests push the
// tails up, and the admission watermark converts the excess into explicit
// Busy sheds — the bounded-latency overload story, not collapse.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/client_swarm.hpp"

using namespace spindle;
using namespace spindle::bench;

namespace {

workload::SwarmConfig base_config(sim::Nanos duration) {
  workload::SwarmConfig cfg;
  cfg.core_nodes = 4;
  cfg.relays = 2;
  cfg.sessions_per_relay = 1000;
  cfg.duration = duration;
  cfg.seed = 1;
  return cfg;
}

std::string krps(double rps) { return Table::num(rps / 1e3, 1); }

}  // namespace

int main() {
  // Scale the arrival window, not the session count: a thousand sessions
  // per relay are passive objects and stay cheap even in the smoke run.
  const double scale = workload::bench_scale();
  const auto duration = static_cast<sim::Nanos>(
      std::max(2e6, 20e6 * scale));

  const std::vector<double> loads_rps{40e3, 80e3, 120e3, 160e3,
                                      200e3, 240e3};

  BenchReport report("client_swarm");
  report.set_provenance(
      1, static_cast<std::uint64_t>(loads_rps.back() *
                                    sim::to_seconds(duration)));

  Table t("Client swarm: offered load vs goodput and tail latency "
          "(2 relays x 1000 sessions, poisson arrivals)",
          {"offered krps/relay", "goodput krps", "ok", "busy", "p50 us",
           "p99 us", "p999 us"});
  std::vector<workload::SwarmResult> results;
  for (std::size_t i = 0; i < loads_rps.size(); ++i) {
    workload::SwarmConfig cfg = base_config(duration);
    cfg.offered_rps_per_relay = loads_rps[i];
    workload::SwarmResult r = workload::run_client_swarm(cfg);
    t.row({krps(loads_rps[i]), krps(r.goodput_rps),
           Table::integer(r.ok), Table::integer(r.busy),
           Table::num(r.p50_us, 1), Table::num(r.p99_us, 1),
           Table::num(r.p999_us, 1)});

    const std::string label = "poisson_" + krps(loads_rps[i]) + "krps";
    workload::ExperimentResult er;
    er.completed = r.completed;
    er.makespan = duration;
    er.engine_steps = r.engine_steps;
    er.wall_seconds = r.wall_seconds;
    er.stats = r.stats;
    report.add_run(label, er);
    report.add_metric(label + "_goodput_rps", r.goodput_rps);
    report.add_metric(label + "_p50_us", r.p50_us);
    report.add_metric(label + "_p99_us", r.p99_us);
    report.add_metric(label + "_p999_us", r.p999_us);
    report.add_metric(label + "_shed", static_cast<double>(r.shed));
    results.push_back(std::move(r));
  }
  t.print();

  // Saturation knee: the last load point whose marginal goodput still
  // tracks the marginal offered load (slope >= 0.5) before the p99
  // inflects off the uncongested baseline. Past it the pipeline is
  // capacity-bound and extra offered load only feeds the tails and the
  // shed counter.
  std::size_t knee = loads_rps.size() - 1;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const double d_offered =
        (loads_rps[i] - loads_rps[i - 1]) * 2;  // both relays
    const double d_goodput =
        results[i].goodput_rps - results[i - 1].goodput_rps;
    if (d_goodput < 0.5 * d_offered ||
        results[i].p99_us > 4 * results.front().p99_us) {
      knee = i - 1;
      break;
    }
  }
  const double knee_rps = loads_rps[knee];
  std::printf("\nsaturation knee: ~%.0f krps/relay (goodput %.0f krps, "
              "p99 %.1f us)\n",
              knee_rps / 1e3, results[knee].goodput_rps / 1e3,
              results[knee].p99_us);
  report.add_metric("knee_rps_per_relay", knee_rps);
  report.add_metric("knee_goodput_rps", results[knee].goodput_rps);
  report.add_metric("knee_p99_us", results[knee].p99_us);

  // 2x knee: overload held at twice the knee. Admission must keep the
  // accepted-request p99 bounded (credits cap the in-pipeline population)
  // and shed the excess explicitly.
  {
    workload::SwarmConfig cfg = base_config(duration);
    cfg.offered_rps_per_relay = 2 * knee_rps;
    const workload::SwarmResult r = workload::run_client_swarm(cfg);
    std::printf("at 2x knee (%.0f krps/relay): goodput %.0f krps, p99 %.1f "
                "us (%.1fx knee), shed %llu, busy %llu%s\n",
                2 * knee_rps / 1e3, r.goodput_rps / 1e3, r.p99_us,
                results[knee].p99_us > 0 ? r.p99_us / results[knee].p99_us
                                         : 0.0,
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.busy),
                r.completed ? "" : " [INCOMPLETE]");
    report.add_metric("p99_at_2x_knee_us", r.p99_us);
    report.add_metric("goodput_at_2x_knee_rps", r.goodput_rps);
    report.add_metric("shed_at_2x_knee", static_cast<double>(r.shed));
    report.add_metric("completed_at_2x_knee", r.completed ? 1 : 0);
  }

  // Arrival-shape sensitivity at the knee: the same mean rate arriving in
  // bursts or with a diurnal swing stresses the credit pool harder than
  // memoryless arrivals.
  Table shapes("Arrival shapes at the knee load",
               {"shape", "goodput krps", "busy", "p99 us", "p999 us"});
  for (const auto shape :
       {workload::ArrivalShape::poisson, workload::ArrivalShape::bursty,
        workload::ArrivalShape::diurnal}) {
    workload::SwarmConfig cfg = base_config(duration);
    cfg.offered_rps_per_relay = knee_rps;
    cfg.shape = shape;
    const workload::SwarmResult r = workload::run_client_swarm(cfg);
    shapes.row({workload::to_string(shape), krps(r.goodput_rps),
                Table::integer(r.busy), Table::num(r.p99_us, 1),
                Table::num(r.p999_us, 1)});
    const std::string label = std::string(workload::to_string(shape)) +
                              "_at_knee";
    report.add_metric(label + "_p99_us", r.p99_us);
    report.add_metric(label + "_busy", static_cast<double>(r.busy));
  }
  shapes.print();

  report.write();
  return 0;
}
