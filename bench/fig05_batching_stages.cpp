// Figure 5: throughput AND latency as batching is applied to successively
// more stages of the pipeline (delivery -> +receive -> +send), all senders.
//
// Paper headline: every added stage improves *both* throughput and latency;
// overall latency drops by nearly two orders of magnitude vs the baseline —
// unlike traditional fixed-size sender batching, which trades latency away.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  struct Stage {
    const char* name;
    bool d, r, s;
  };
  const Stage stages[] = {{"baseline", false, false, false},
                          {"+delivery", true, false, false},
                          {"+receive", true, true, false},
                          {"+send", true, true, true}};

  Table t("Figure 5: incremental batching stages (all senders, 10KB)",
          {"nodes", "stage", "GB/s", "median latency (us)", "paper"});
  for (std::size_t n : node_sweep()) {
    for (const Stage& st : stages) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = SenderPattern::all;
      cfg.message_size = 10240;
      cfg.opts = core::ProtocolOptions::baseline();
      cfg.opts.delivery_batching = st.d;
      cfg.opts.receive_batching = st.r;
      cfg.opts.send_batching = st.s;
      cfg.messages_per_sender = scaled(st.r ? 500 : 200);
      auto r = workload::run_averaged(cfg, 2);
      t.row({Table::integer(n), st.name, gbps(r.mean_gbps),
             Table::num(r.mean_median_latency_us, 1),
             (n == 16 && st.s) ? "both metrics improve each stage" : ""});
    }
  }
  t.print();
  return 0;
}
