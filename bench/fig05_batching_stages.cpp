// Figure 5: throughput AND latency as batching is applied to successively
// more stages of the pipeline (delivery -> +receive -> +send), all senders.
//
// Paper headline: every added stage improves *both* throughput and latency;
// overall latency drops by nearly two orders of magnitude vs the baseline —
// unlike traditional fixed-size sender batching, which trades latency away.

#include <cstdlib>

#include "bench_util.hpp"
#include "trace/analysis.hpp"

using namespace spindle;
using namespace spindle::bench;

namespace {

// Observability quickstart (README): SPINDLE_TRACE_OUT=<file> re-runs the
// fully batched 16-node configuration with pipeline tracing enabled, writes
// a Chrome/Perfetto JSON dump there, and prints the trace-derived stage
// batching + per-message lifecycle breakdown.
void dump_trace(const char* out) {
  ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.senders = SenderPattern::all;
  cfg.message_size = 10240;
  cfg.opts = core::ProtocolOptions::spindle();
  cfg.messages_per_sender = scaled(200);
  cfg.trace_out = out;
  trace::BatchStats bs;
  trace::LifecycleReport life;
  cfg.trace_sink = [&](const trace::Tracer& tr) {
    bs = trace::batch_stats(tr);
    life = trace::lifecycle(tr);
  };
  const auto r = workload::run_experiment(cfg);
  std::printf("\ntraced run: %llu events -> %s\n",
              static_cast<unsigned long long>(r.trace_events), out);
  std::printf("trace-derived batch sizes: send mean %.2f | receive mean %.2f"
              " | delivery mean %.2f\n",
              bs.send.mean(), bs.receive.mean(), bs.delivery.mean());
  std::printf("%s", trace::format(life).c_str());
}

}  // namespace

int main() {
  struct Stage {
    const char* name;
    bool d, r, s;
  };
  const Stage stages[] = {{"baseline", false, false, false},
                          {"+delivery", true, false, false},
                          {"+receive", true, true, false},
                          {"+send", true, true, true}};

  Table t("Figure 5: incremental batching stages (all senders, 10KB)",
          {"nodes", "stage", "GB/s", "median latency (us)", "paper"});
  BenchReport report("fig05_batching_stages");
  report.set_provenance(ExperimentConfig{}.seed, scaled(2000));
  for (std::size_t n : node_sweep()) {
    for (const Stage& st : stages) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = SenderPattern::all;
      cfg.message_size = 10240;
      cfg.opts = core::ProtocolOptions::baseline();
      cfg.opts.delivery_batching = st.d;
      cfg.opts.receive_batching = st.r;
      cfg.opts.send_batching = st.s;
      cfg.messages_per_sender = scaled(st.r ? 2000 : 800);
      auto r = workload::run_averaged(cfg, 2);
      report.add_run(std::to_string(n) + "/" + st.name, r);
      t.row({Table::integer(n), st.name, gbps(r.mean_gbps),
             Table::num(r.mean_median_latency_us, 1),
             (n == 16 && st.s) ? "both metrics improve each stage" : ""});
    }
  }
  t.print();
  report.write();
  if (const char* out = std::getenv("SPINDLE_TRACE_OUT")) dump_trace(out);
  return 0;
}
