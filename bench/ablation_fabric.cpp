// Ablation of two fabric-level design choices called out in DESIGN.md /
// EXPERIMENTS.md. Not a paper figure — these quantify modeling decisions
// that turned out to be load-bearing for reproducing the paper's shapes.
//
//  A. Separate SST (control) vs SMC (bulk) connections. RDMA orders only
//     within a QP; Derecho keeps the SST on its own QPs. If the 8-byte
//     acknowledgments instead share the bulk FIFO, they are head-of-line
//     blocked behind hundred-KB batched data writes and the stability
//     feedback loop degenerates into burst-and-stall.
//
//  B. Doorbell-batched verb posting (Kalia et al.): consecutive posts in a
//     burst cost less CPU than the first. Without it, posting dominates the
//     polling thread exactly as §3.2 describes for the baseline.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  Table t("Ablation: fabric design choices (16 nodes, all senders, 10KB)",
          {"configuration", "GB/s", "median latency (us)", "post CPU %"});

  auto run = [&](const char* name, bool separate, bool doorbell_batching) {
    ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.messages_per_sender = scaled(400);
    cfg.opts = core::ProtocolOptions::spindle();
    cfg.timing.separate_control_channel = separate;
    if (!doorbell_batching) {
      cfg.timing.post_cpu_next = cfg.timing.post_cpu_first;
    }
    auto r = workload::run_experiment(cfg);
    const double post_pct = 100.0 * static_cast<double>(r.stats.total.post_cpu) /
                            16.0 / static_cast<double>(r.makespan);
    t.row({name, gbps(r.throughput_gbps),
           Table::num(r.median_latency_us, 0), Table::num(post_pct, 0)});
  };

  run("separate QPs + doorbell batching (default)", true, true);
  run("shared FIFO (acks behind bulk data)", false, true);
  run("separate QPs, no doorbell batching", true, false);
  run("shared FIFO, no doorbell batching", false, false);
  t.print();
  return 0;
}
