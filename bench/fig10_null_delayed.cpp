// Figure 10 + §4.2.1: the primary null-send test. All members are senders;
// one or half of them are artificially delayed after each send (1us /
// 100us / indefinitely). Bandwidth is measured over a fixed number of
// messages from the continuous senders.
//
// Paper headlines: performance *increases* in every case except
// half-delayed-indefinitely (small delays -> larger batches; large delays
// -> remaining senders use the bandwidth), peaking at 10.0 GB/s. The
// delayed sender emits nulls in many receive-predicate iterations, and the
// inter-delivery gap between a continuous and a delayed sender's messages
// shrinks with n (3.779us @2 -> 1.617us @8 -> 1.192us @16).

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  struct Case {
    const char* name;
    std::size_t delayed;
    sim::Nanos delay;
    bool forever;
    const char* paper;
  };
  const Case cases[] = {
      {"no delay", 0, 0, false, "reference"},
      {"one delayed 1us", 1, 1'000, false, "slight increase"},
      {"one delayed 100us", 1, 100'000, false, "stays high (nulls fill)"},
      {"one delayed forever", 1, 0, true, "15/16 of reference"},
      {"half delayed 1us", 8, 1'000, false, "stays high"},
      {"half delayed 100us", 8, 100'000, false, "stays high"},
      {"half delayed forever", 8, 0, true, "~half (only case that drops)"},
  };

  Table t("Figure 10: delayed senders with null-sends (16 nodes, 10KB)",
          {"case", "GB/s", "nulls", "null iterations", "paper"});
  for (const Case& c : cases) {
    ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.messages_per_sender = scaled(300);
    cfg.delayed_senders = c.delayed;
    cfg.post_send_delay = c.delay;
    cfg.delayed_forever = c.forever;
    cfg.opts = core::ProtocolOptions::spindle();
    auto r = workload::run_experiment(cfg);
    t.row({c.name, gbps(r.throughput_gbps) + check_completed(r),
           Table::integer(r.stats.total.nulls_sent),
           Table::integer(r.stats.total.null_iterations), c.paper});
  }
  t.print();

  // Contrast: the same one-delayed-100us case with null-sends disabled —
  // the situation §3.3 exists to fix.
  {
    ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.messages_per_sender = scaled(200);
    cfg.delayed_senders = 1;
    cfg.post_send_delay = 100'000;
    cfg.opts = core::ProtocolOptions::spindle();
    cfg.opts.null_sends = false;
    auto r = workload::run_experiment(cfg);
    std::printf(
        "\nWithout null-sends, one sender delayed 100us: %.2f GB/s — the\n"
        "round-robin delivery order stalls behind the laggard (%s).\n",
        r.throughput_gbps, r.completed ? "completed" : "stalled");
  }

  Table g("Sec 4.2.1: latency of a delayed sender's messages vs subgroup size",
          {"nodes", "median latency delayed (us)", "median all (us)", "paper"});
  for (std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{16}}) {
    ExperimentConfig cfg;
    cfg.nodes = n;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.messages_per_sender = scaled(300);
    cfg.delayed_senders = 1;
    cfg.post_send_delay = 100'000;
    cfg.opts = core::ProtocolOptions::spindle();
    auto r = workload::run_experiment(cfg);
    g.row({Table::integer(n),
           Table::num(static_cast<double>(
                          r.delayed_sender_latency_ns.median()) / 1e3, 1),
           Table::num(static_cast<double>(
                          r.continuous_sender_latency_ns.median()) / 1e3, 1),
           n == 16 ? "inter-delivery gap shrinks with n" : ""});
  }
  g.print();
  return 0;
}
