// Section 3.5: delays caused by the receiver. Delivery upcalls run on the
// polling thread's critical path; this bench injects 1us / 100us / 1ms of
// application processing per delivered message.
//
// Paper headlines: throughput drops ~9% / ~90% / ~99%; for the larger
// delays the system degenerates to one message delivered per delay time.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.senders = SenderPattern::one;
  cfg.message_size = 10240;
  cfg.messages_per_sender = scaled(400);
  cfg.opts = core::ProtocolOptions::spindle();
  auto base = workload::run_experiment(cfg);

  Table t("Sec 3.5: delivery upcall delay (one sender, 16 nodes)",
          {"upcall delay", "GB/s", "msgs/s per node", "drop %", "paper"});
  t.row({"none", gbps(base.throughput_gbps),
         Table::num(base.delivery_rate_per_node, 0), "0", "reference"});
  struct Case {
    sim::Nanos delay;
    const char* name;
    const char* paper;
    std::size_t msgs;
  };
  const Case cases[] = {{1'000, "1us", "~9%", scaled(400)},
                        {100'000, "100us", "~90% (1 msg per delay)", 100},
                        {1'000'000, "1ms", "~99% (1 msg per delay)", 40}};
  for (const Case& c : cases) {
    ExperimentConfig d = cfg;
    d.opts.extra_upcall_delay = c.delay;
    d.messages_per_sender = c.msgs;
    auto r = workload::run_experiment(d);
    t.row({c.name, gbps(r.throughput_gbps),
           Table::num(r.delivery_rate_per_node, 0),
           Table::num(100.0 * (1.0 - r.throughput_gbps /
                               base.throughput_gbps), 0),
           c.paper});
  }
  t.print();

  std::printf(
      "\nMitigations (§3.5): batched delivery upcalls, or memcpy-out and\n"
      "return immediately — see bench_fig15_memcpy_pipeline.\n");

  // Mitigation 1 in action: the same 1us-per-upcall application, all
  // senders, with per-message vs batched upcalls.
  {
    workload::ExperimentConfig d = cfg;
    d.senders = SenderPattern::all;
    d.messages_per_sender = scaled(300);
    d.opts.extra_upcall_delay = 1'000;
    auto per_msg = workload::run_experiment(d);
    // The harness installs per-message handlers; emulate the batched
    // variant by charging the delay once per delivery batch: run a
    // dedicated cluster.
    core::ClusterConfig cc;
    cc.nodes = 16;
    core::Cluster cluster(cc);
    core::SubgroupConfig sc;
    sc.name = "batched";
    for (net::NodeId i = 0; i < 16; ++i) sc.members.push_back(i);
    sc.senders = sc.members;
    sc.opts = d.opts;
    auto sg = cluster.create_subgroup(sc);
    cluster.start();
    for (net::NodeId i = 0; i < 16; ++i) {
      cluster.node(i).set_batch_delivery_handler(
          sg, [](std::span<const core::Delivery>) {});
      cluster.engine().spawn(
          [](core::Cluster* c, net::NodeId id, core::SubgroupId g,
             std::size_t count) -> sim::Co<> {
            for (std::size_t m = 0; m < count; ++m) {
              if (c->node(id).stopped()) co_return;
              co_await c->node(id).send(g, 10240,
                                        [](std::span<std::byte>) {});
            }
          }(&cluster, i, sg, d.messages_per_sender));
    }
    cluster.engine().run_until(
        [&] {
          return cluster.total_delivered(sg) >=
                 16ull * d.messages_per_sender * 16ull;
        },
        sim::seconds(120));
    const double batched_gbps =
        static_cast<double>(cluster.stats().total.bytes_delivered) / 16.0 /
        sim::to_seconds(cluster.engine().now()) / 1e9;
    std::printf(
        "1us upcall, 16 senders: per-message upcalls %.2f GB/s vs batched "
        "upcalls %.2f GB/s\n",
        per_msg.throughput_gbps, batched_gbps);
    cluster.shutdown();
  }
  return 0;
}
