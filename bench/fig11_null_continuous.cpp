// Figure 11 + §4.2.2: impact of null-sends when every sender streams
// continuously — nulls can only arise from the "inevitable small relative
// motion" between members (scheduling hiccups).
//
// Paper headlines: for all senders the cost is visible at small subgroup
// sizes (up to 25% at n=2) and vanishes (or turns into a gain) at larger
// sizes; negligible for half senders; exactly zero nulls for one sender.
// NOTE: our simulated hiccups are milder than the paper's testbed noise,
// so the small-n penalty is present but smaller (see EXPERIMENTS.md); the
// noisy profile below amplifies thread jitter to approximate their
// environment.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

namespace {
void sweep(const char* title, const core::CpuModel& cpu) {
  Table t(title, {"pattern", "nodes", "nulls off", "nulls on", "ratio",
                  "nulls sent"});
  for (auto pattern : {SenderPattern::all, SenderPattern::half,
                       SenderPattern::one}) {
    for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                          std::size_t{16}}) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = pattern;
      cfg.message_size = 10240;
      cfg.messages_per_sender = scaled(300);
      cfg.cpu = cpu;
      cfg.opts = core::ProtocolOptions::spindle();
      cfg.opts.null_sends = false;
      auto off = workload::run_experiment(cfg);
      cfg.opts.null_sends = true;
      auto on = workload::run_experiment(cfg);
      t.row({pattern_name(pattern), Table::integer(n),
             gbps(off.throughput_gbps), gbps(on.throughput_gbps),
             Table::num(on.throughput_gbps / off.throughput_gbps, 3),
             Table::integer(on.stats.total.nulls_sent)});
    }
  }
  t.print();
}
}  // namespace

int main() {
  core::CpuModel calm;  // defaults
  sweep("Figure 11: null-sends under continuous sending (default noise)",
        calm);

  core::CpuModel noisy;
  noisy.hiccup_mean_gap = 20'000;
  noisy.hiccup_duration = 8'000;
  sweep("Figure 11 (noisy-testbed profile: 8us hiccups every ~20us)", noisy);

  std::printf(
      "\npaper: up to 25%% penalty at small n (all senders), negligible for\n"
      "half senders, zero nulls for one sender; gains at larger sizes.\n");
  return 0;
}
