// Figure 1: RDMA write latency vs data size.
//
// The paper measures one-sided RDMA write latency on its InfiniBand
// cluster: ~1.73 us for 1 B rising only to ~2.46 us at 4 KB. This bench
// reports the simulated fabric's isolated write latency over the same
// range, which is the calibration target for every other experiment.

#include <cstdio>
#include <vector>

#include "net/fabric.hpp"
#include "workload/table.hpp"

int main() {
  using namespace spindle;
  net::TimingModel timing;

  workload::Table table(
      "Figure 1: RDMA write latency vs data size (simulated fabric)",
      {"size (B)", "latency (us)", "paper (us)"});

  struct Point {
    std::size_t size;
    const char* paper;
  };
  const std::vector<Point> points = {
      {1, "1.73"},    {16, "-"},    {64, "-"},      {256, "-"},
      {1024, "-"},    {2048, "-"},  {4096, "2.46"}, {16384, "-"},
      {65536, "-"},   {262144, "-"}, {1048576, "-"},
  };

  for (const auto& p : points) {
    // Measure end-to-end through the event loop to validate the model.
    sim::Engine engine;
    net::Fabric fabric(engine, timing, 2);
    std::vector<std::byte> src(p.size, std::byte{1});
    std::vector<std::byte> dst(p.size);
    auto region = fabric.register_region(1, dst);
    const sim::Nanos post = fabric.post_write(0, region, 0, src);
    engine.run();
    const double us = sim::to_micros(engine.now() - post);
    table.row({workload::Table::integer(p.size), workload::Table::num(us),
               p.paper});
  }
  table.print();
  std::printf(
      "\nShape check: latency is nearly flat to 4KB (paper: 1.73us -> "
      "2.46us), then grows with serialization at 12.5 GB/s.\n");
  return 0;
}
