// Parallel conservative-lookahead engine scaling: the same fig09-style
// workload (all senders, 10KB messages, opportunistic batching) run serial
// and at 2/4/8 workers on 16-, 64- and 128-node clusters.
//
// Two things are measured per cell:
//  - wall-clock speedup vs the serial engine (the perf headline; the PR
//    target is >= 3x at 4 workers on the 64-node run **on >= 4 physical
//    cores** — on fewer cores the barrier degrades to yielding and the
//    speedup column honestly reports <= 1; the report's provenance block
//    records hardware_concurrency so the number can be read in context);
//  - digest drift: the delivery-latency histogram (count, min, max, every
//    bucket) of each parallel run hashed against the serial run's. The
//    parallel engine is byte-identical to serial, so ANY drift is a bug —
//    the bench exits non-zero on drift, making the smoke run a correctness
//    gate as well as a perf probe.

#include <cstdint>

#include "bench_util.hpp"
#include "metrics/metrics.hpp"

using namespace spindle;
using namespace spindle::bench;

namespace {

std::uint64_t histogram_digest(const metrics::Histogram& h) {
  std::uint64_t d = 1469598103934665603ull;
  const auto mix = [&d](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      d ^= (v >> (8 * i)) & 0xff;
      d *= 1099511628211ull;
    }
  };
  mix(h.count());
  mix(h.min());
  mix(h.max());
  for (const auto& b : h.buckets()) {
    mix(b.low);
    mix(b.count);
  }
  return d;
}

}  // namespace

int main() {
  Table t("Parallel engine scaling (fig09-style workload, serial vs workers)",
          {"nodes", "workers", "wall s", "events/s", "speedup", "drift"});
  BenchReport report("parallel_engine");
  report.set_provenance(1, scaled(100));

  bool drift_detected = false;
  for (std::size_t nodes : {std::size_t{16}, std::size_t{64},
                            std::size_t{128}}) {
    // Keep the total delivery count comparable across cluster sizes: the
    // per-sender count shrinks as the node count (senders x receivers)
    // grows.
    const std::size_t msgs = nodes <= 16   ? scaled(100)
                             : nodes <= 64 ? scaled(50)
                                           : scaled(40);
    double serial_wall = 0;
    std::uint64_t serial_digest = 0;
    for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      ExperimentConfig cfg;
      cfg.nodes = nodes;
      cfg.senders = SenderPattern::all;
      cfg.message_size = 10240;
      cfg.subgroups = 1;
      cfg.opts = core::ProtocolOptions::spindle();
      // SMC ring memory is window x slot x senders x nodes; the default
      // 100-slot window costs ~17 GB at 128 nodes and the page-zeroing
      // dwarfs the simulation (this bench measures the *engine*, not ring
      // sizing). 16 slots keeps every cell under ~3 GB; serial and
      // parallel cells share the value, so digests stay comparable.
      cfg.opts.window_size = 16;
      cfg.messages_per_sender = msgs;
      cfg.sim_threads = workers;
      const ExperimentResult r = workload::run_experiment(cfg);

      // Completion-invariant drift check: every tracked message delivers at
      // the same virtual time regardless of worker count, so the latency
      // histogram must hash identically to the serial run's.
      const std::uint64_t digest =
          histogram_digest(r.stats.total.delivery_latency_ns);
      if (workers == 1) {
        serial_wall = r.wall_seconds;
        serial_digest = digest;
      }
      const bool drift = !r.completed || digest != serial_digest;
      drift_detected = drift_detected || drift;
      const double speedup =
          r.wall_seconds > 0 ? serial_wall / r.wall_seconds : 0;

      const std::string label =
          "n" + std::to_string(nodes) + "_w" + std::to_string(workers);
      t.row({Table::integer(nodes), Table::integer(workers),
             Table::num(r.wall_seconds, 2),
             Table::num(r.wall_seconds > 0
                            ? static_cast<double>(r.engine_steps) /
                                  r.wall_seconds
                            : 0,
                        0),
             Table::num(speedup, 2) + check_completed(r),
             drift ? "DRIFT" : "ok"});
      report.add_run(label, r);
      report.add_metric("speedup_" + label, speedup);
    }
  }
  t.print();
  report.write();
  if (drift_detected) {
    std::fprintf(stderr,
                 "parallel_engine: DIGEST DRIFT — parallel run diverged from "
                 "serial\n");
    return 1;
  }
  return 0;
}
