#pragma once

// Shared helpers for the figure-reproduction benches. Each bench prints the
// paper's series next to ours; absolute GB/s values depend on the simulator
// calibration (see DESIGN.md §5), the *shape* is the reproduction target.
// Message counts are scaled down from the paper's 1M per sender; set
// SPINDLE_BENCH_SCALE to raise or lower them.

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "workload/experiment.hpp"
#include "workload/sharded.hpp"
#include "workload/table.hpp"

extern "C" char** environ;  // POSIX: not declared by any header

namespace spindle::bench {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::SenderPattern;
using workload::Table;

inline std::size_t scaled(std::size_t base) {
  const double v = static_cast<double>(base) * workload::bench_scale();
  return v < 40 ? 40 : static_cast<std::size_t>(v);
}

inline const char* pattern_name(SenderPattern p) {
  switch (p) {
    case SenderPattern::all:
      return "all senders";
    case SenderPattern::half:
      return "half senders";
    case SenderPattern::one:
      return "one sender";
  }
  return "?";
}

inline std::vector<std::size_t> node_sweep() { return {2, 4, 8, 11, 16}; }

inline std::string gbps(double v) { return Table::num(v, 2); }

inline std::string check_completed(const ExperimentResult& r) {
  return r.completed ? "" : " [INCOMPLETE: watchdog tripped]";
}

/// Machine-readable bench output: accumulates per-configuration rows plus
/// free-form scalar metrics and writes them to BENCH_<name>.json in the
/// working directory. CI jobs diff these files across commits to track the
/// simulator's wall-clock trajectory (events/sec, sweep times) alongside
/// the simulated-protocol numbers the tables print.
///
/// Shape:
///   { "bench": "<name>", "scale": <SPINDLE_BENCH_SCALE>,
///     "provenance": { "seed": ..., "messages_per_sender": ...,
///                     "shards": ..., "cross_shard_fraction": ...,
///                     "sim_threads": ..., "hardware_concurrency": ...,
///                     "env": { "SPINDLE_...": "...", ... } },
///     "runs": [ { "label": "...", "events_per_sec": ..., "wall_seconds":
///                 ..., "makespan_ns": ..., "msgs_delivered": ...,
///                 "engine_steps": ..., "sim_workers": ...,
///                 "throughput_gbps": ... }, ... ],
///     "metrics": { "<key>": <number>, ... } }
///
/// The provenance block is what makes a checked-in report reproducible: the
/// base RNG seed and per-sender message count the bench ran with, the
/// simulation worker-thread count in effect (SPINDLE_SIM_THREADS resolution)
/// next to the machine's hardware concurrency (so a wall-clock diff between
/// reports from 1-core CI and a many-core box is attributable), plus every
/// SPINDLE_* environment override — so a diff between two reports can be
/// traced to a code change rather than a forgotten env var.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Stamp the run parameters (base seed, per-sender message count) into
  /// the report's provenance block. Benches sweeping several configurations
  /// pass their base/first configuration.
  void set_provenance(std::uint64_t seed, std::uint64_t messages_per_sender) {
    seed_ = seed;
    messages_per_sender_ = messages_per_sender;
    has_provenance_ = true;
  }

  /// Sharded-domain benches additionally stamp the shard count and the
  /// cross-shard fraction the report's headline rows ran with (benches
  /// sweeping both pass their largest configuration).
  void set_shard_provenance(std::size_t shards, double cross_fraction) {
    shards_ = shards;
    cross_fraction_ = cross_fraction;
    has_shard_provenance_ = true;
  }

  /// Record one experiment under `label`. events/sec is engine events
  /// dispatched per wall second — the simulator-speed headline number.
  void add_run(const std::string& label, const ExperimentResult& r) {
    Run run;
    run.label = label;
    run.engine_steps = r.engine_steps;
    run.wall_seconds = r.wall_seconds;
    run.makespan_ns = static_cast<std::uint64_t>(r.makespan);
    run.msgs_delivered = r.stats.total.messages_delivered;
    run.sim_workers = r.sim_workers;
    run.throughput_gbps = r.throughput_gbps;
    runs_.push_back(std::move(run));
  }

  /// Record an averaged sweep: engine_steps/wall_seconds are summed over
  /// the sweep's runs, protocol metrics come from the last run.
  void add_run(const std::string& label, const workload::Averaged& a) {
    Run run;
    run.label = label;
    run.engine_steps = a.engine_steps;
    run.wall_seconds = a.wall_seconds;
    run.makespan_ns = static_cast<std::uint64_t>(a.last.makespan);
    run.msgs_delivered = a.last.stats.total.messages_delivered;
    run.sim_workers = a.last.sim_workers;
    run.throughput_gbps = a.mean_gbps;
    runs_.push_back(std::move(run));
  }

  /// Record one sharded-domain run: msgs_delivered counts merged upcalls
  /// (each send exactly once per member), matching the throughput metric.
  void add_run(const std::string& label, const workload::ShardedResult& r) {
    Run run;
    run.label = label;
    run.engine_steps = r.engine_steps;
    run.wall_seconds = r.wall_seconds;
    run.makespan_ns = static_cast<std::uint64_t>(r.makespan);
    run.msgs_delivered = r.expected_deliveries;
    run.sim_workers = r.sim_workers;
    run.throughput_gbps = r.throughput_gbps;
    runs_.push_back(std::move(run));
  }

  /// Free-form scalar (e.g. a speedup ratio or an ops/sec measurement that
  /// does not come from an ExperimentResult).
  void add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Write BENCH_<name>.json. Returns false (and warns on stderr) on I/O
  /// failure; benches keep their exit status independent of report I/O.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %.6g,\n",
                 escape(name_).c_str(), workload::bench_scale());
    std::fprintf(f, "  \"provenance\": {");
    if (has_provenance_) {
      std::fprintf(f, "\n    \"seed\": %llu,\n    \"messages_per_sender\": %llu,",
                   static_cast<unsigned long long>(seed_),
                   static_cast<unsigned long long>(messages_per_sender_));
    }
    if (has_shard_provenance_) {
      std::fprintf(f,
                   "\n    \"shards\": %llu,"
                   "\n    \"cross_shard_fraction\": %.6g,",
                   static_cast<unsigned long long>(shards_), cross_fraction_);
    }
    std::fprintf(f,
                 "\n    \"sim_threads\": %llu,"
                 "\n    \"hardware_concurrency\": %u,",
                 static_cast<unsigned long long>(
                     workload::sim_threads_from_env()),
                 std::thread::hardware_concurrency());
    std::fprintf(f, "\n    \"env\": {");
    bool first_env = true;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
      const std::string entry = *e;
      if (entry.rfind("SPINDLE_", 0) != 0) continue;
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos) continue;
      std::fprintf(f, "%s\n      \"%s\": \"%s\"", first_env ? "" : ",",
                   escape(entry.substr(0, eq)).c_str(),
                   escape(entry.substr(eq + 1)).c_str());
      first_env = false;
    }
    std::fprintf(f, "\n    }\n  },\n");
    std::fprintf(f, "  \"runs\": [");
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const Run& r = runs_[i];
      const double eps =
          r.wall_seconds > 0
              ? static_cast<double>(r.engine_steps) / r.wall_seconds
              : 0;
      std::fprintf(f,
                   "%s\n    { \"label\": \"%s\", \"events_per_sec\": %.6g, "
                   "\"wall_seconds\": %.6g, \"makespan_ns\": %llu, "
                   "\"msgs_delivered\": %llu, \"engine_steps\": %llu, "
                   "\"sim_workers\": %llu, \"throughput_gbps\": %.6g }",
                   i ? "," : "", escape(r.label).c_str(), eps, r.wall_seconds,
                   static_cast<unsigned long long>(r.makespan_ns),
                   static_cast<unsigned long long>(r.msgs_delivered),
                   static_cast<unsigned long long>(r.engine_steps),
                   static_cast<unsigned long long>(r.sim_workers),
                   r.throughput_gbps);
    }
    std::fprintf(f, "\n  ],\n  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.6g", i ? "," : "",
                   escape(metrics_[i].first).c_str(), metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("bench report: %s\n", path.c_str());
    return true;
  }

 private:
  struct Run {
    std::string label;
    std::uint64_t engine_steps = 0;
    double wall_seconds = 0;
    std::uint64_t makespan_ns = 0;
    std::uint64_t msgs_delivered = 0;
    std::uint64_t sim_workers = 1;
    double throughput_gbps = 0;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<Run> runs_;
  std::vector<std::pair<std::string, double>> metrics_;
  bool has_provenance_ = false;
  std::uint64_t seed_ = 0;
  std::uint64_t messages_per_sender_ = 0;
  bool has_shard_provenance_ = false;
  std::size_t shards_ = 0;
  double cross_fraction_ = 0;
};

}  // namespace spindle::bench
