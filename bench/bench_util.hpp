#pragma once

// Shared helpers for the figure-reproduction benches. Each bench prints the
// paper's series next to ours; absolute GB/s values depend on the simulator
// calibration (see DESIGN.md §5), the *shape* is the reproduction target.
// Message counts are scaled down from the paper's 1M per sender; set
// SPINDLE_BENCH_SCALE to raise or lower them.

#include <cstdio>
#include <string>
#include <vector>

#include "workload/experiment.hpp"
#include "workload/table.hpp"

namespace spindle::bench {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::SenderPattern;
using workload::Table;

inline std::size_t scaled(std::size_t base) {
  const double v = static_cast<double>(base) * workload::bench_scale();
  return v < 40 ? 40 : static_cast<std::size_t>(v);
}

inline const char* pattern_name(SenderPattern p) {
  switch (p) {
    case SenderPattern::all:
      return "all senders";
    case SenderPattern::half:
      return "half senders";
    case SenderPattern::one:
      return "one sender";
  }
  return "?";
}

inline std::vector<std::size_t> node_sweep() { return {2, 4, 8, 11, 16}; }

inline std::string gbps(double v) { return Table::num(v, 2); }

inline std::string check_completed(const ExperimentResult& r) {
  return r.completed ? "" : " [INCOMPLETE: watchdog tripped]";
}

}  // namespace spindle::bench
