// Figure 12 + §3.4: efficient thread synchronization — restructuring every
// predicate so RDMA writes are posted only after the shared-state lock is
// released (safe because SST state is monotonic and cache-line atomic).
//
// Paper headline: ~1.4X average improvement on top of batching + nulls for
// the single subgroup, all senders; peak network utilization 77.6% reached
// at 4 members and stable through 16.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  Table t("Figure 12: early lock release (all senders, 10KB)",
          {"nodes", "locked posts", "early release", "speedup",
           "lock wait % (before/after)", "paper"});
  double sum_ratio = 0;
  int count = 0;
  for (std::size_t n : node_sweep()) {
    ExperimentConfig cfg;
    cfg.nodes = n;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.messages_per_sender = scaled(400);
    cfg.opts = core::ProtocolOptions::spindle();
    cfg.opts.early_lock_release = false;
    auto off = workload::run_experiment(cfg);
    cfg.opts.early_lock_release = true;
    auto on = workload::run_experiment(cfg);
    const double ratio = on.throughput_gbps / off.throughput_gbps;
    sum_ratio += ratio;
    ++count;
    const double lw_off = 100.0 * static_cast<double>(off.stats.total.lock_wait) /
                          static_cast<double>(n) /
                          static_cast<double>(off.makespan);
    const double lw_on = 100.0 * static_cast<double>(on.stats.total.lock_wait) /
                         static_cast<double>(n) /
                         static_cast<double>(on.makespan);
    t.row({Table::integer(n), gbps(off.throughput_gbps),
           gbps(on.throughput_gbps), Table::num(ratio, 2) + "x",
           Table::num(lw_off, 0) + "% / " + Table::num(lw_on, 0) + "%",
           n == 4 ? "77.6% peak utilization @4" : ""});
  }
  t.print();
  std::printf("average speedup: %.2fx (paper: ~1.4x)\n",
              sum_ratio / count);
  return 0;
}
