// Tracing overhead: the same experiment with tracing off and on. Recording
// never touches the simulation engine, so the virtual-time results must be
// *identical*; the only cost is host-side wall clock (ring-buffer stores),
// reported here as a percentage. This is the acceptance gate for "the
// tracing-disabled path is within noise" — disabled tracing is one branch
// per record() call.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.nodes = 8;
  cfg.senders = SenderPattern::all;
  cfg.message_size = 10240;
  cfg.opts = core::ProtocolOptions::spindle();
  cfg.messages_per_sender = scaled(400);
  return cfg;
}

double run_ms(const ExperimentConfig& cfg, ExperimentResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = workload::run_experiment(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  ExperimentConfig off = base_config();
  ExperimentConfig on = base_config();
  on.trace.enabled = true;
  on.trace.ring_capacity = 1 << 18;

  // Interleave a warmup of each so allocator state is comparable.
  ExperimentResult tmp;
  run_ms(off, tmp);
  run_ms(on, tmp);

  ExperimentResult r_off, r_on;
  const double ms_off = run_ms(off, r_off);
  const double ms_on = run_ms(on, r_on);

  Table t("Tracing overhead (8 nodes, all senders, 10KB)",
          {"tracing", "GB/s", "makespan (us)", "events", "wall (ms)"});
  t.row({"off", gbps(r_off.throughput_gbps),
         Table::num(sim::to_seconds(r_off.makespan) * 1e6, 1),
         Table::integer(r_off.trace_events), Table::num(ms_off, 1)});
  t.row({"on", gbps(r_on.throughput_gbps),
         Table::num(sim::to_seconds(r_on.makespan) * 1e6, 1),
         Table::integer(r_on.trace_events), Table::num(ms_on, 1)});
  t.print();

  if (r_off.makespan != r_on.makespan) {
    std::printf("FAIL: tracing perturbed virtual time (%lld != %lld)\n",
                static_cast<long long>(r_off.makespan),
                static_cast<long long>(r_on.makespan));
    return 1;
  }
  std::printf("virtual time identical with tracing on; wall-clock delta "
              "%+.1f%%\n",
              ms_off > 0 ? (ms_on - ms_off) / ms_off * 100.0 : 0.0);
  return 0;
}
