// Figure 4: rate of delivery (messages/s per node) for the optimized
// version across message sizes 1B / 128B / 1KB / 10KB.
//
// Paper headline: for small messages, the number of messages delivered per
// second stays in the same band regardless of size — throughput is
// coordination-limited, so bytes/s scales with the message size.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  Table t("Figure 4: delivery rate, all senders, opportunistic batching",
          {"nodes", "size (B)", "msgs/s per node", "GB/s", "paper"});
  for (std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{16}}) {
    for (std::uint32_t size : {1u, 128u, 1024u, 10240u}) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = SenderPattern::all;
      cfg.message_size = size;
      cfg.messages_per_sender = scaled(size <= 128 ? 2000 : 600);
      cfg.opts = core::ProtocolOptions::spindle();
      auto r = workload::run_experiment(cfg);
      t.row({Table::integer(n), Table::integer(size),
             Table::num(r.delivery_rate_per_node / 1e3, 0) + "k",
             gbps(r.throughput_gbps),
             size == 10240 ? "rate ~ constant across sizes" : ""});
    }
  }
  t.print();
  return 0;
}
