// SST-vs-FAA cross-shard sequencer comparison: the same sharded workload
// (8 nodes, k shard subgroups, hash-keyed singles + a cross-shard stream)
// run twice per cell — once with the SST polling sequencer (push xreq, grant
// predicate scan, grant-pair push back) and once with the one-sided
// fetch-add ticket counter (net::TicketSequencer: one NIC round trip, no
// remote CPU, no predicate scan). Sweep: k in {2, 4, 8} x cross fraction in
// {1%, 10%, 50%}.
//
// Headline metric: median sequencer grant latency (lock wait excluded) —
// the FAA arm must beat the SST arm at every measured cell, since a ~2x
// write-latency RMW round trip (~3.7 us, DESIGN.md §3g) undercuts an SST
// grant's two one-sided writes *plus* the sequencer's polling-loop service
// delay and the requester's own poll interval. Throughput rides along for
// the end-to-end comparison.
//
// Correctness gate (projection identity): a dedicated fixed-size cell —
// independent of SPINDLE_BENCH_SCALE, so the smoke run exercises exactly
// the configuration this gate was validated on — is run through both arms
// and member 0's per-shard merged-projection digests must match
// digest-for-digest. The digests are commutative folds over payload tags
// (workload::ShardedResult::shard_projection_digests): the gsn map and the
// cross copies' arrival points relative to singles are functions of
// grant-transport timing, so the two modes legitimately *interleave*
// crosses differently — but each shard's projection must carry exactly the
// same message set exactly once in both modes. The gate (plus equal grant
// counts per cell) catches dropped, duplicated, or misrouted messages on
// the FAA path; the bench exits non-zero on drift.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/sharded.hpp"

using namespace spindle;
using namespace spindle::bench;
using workload::ShardedConfig;
using workload::ShardedResult;

namespace {

ShardedConfig base_config(std::size_t shards, double cross_fraction,
                          core::SequencerKind mode) {
  ShardedConfig cfg;
  cfg.nodes = 8;
  cfg.shards = shards;
  cfg.messages_per_sender = std::max<std::size_t>(scaled(200), 100);
  cfg.message_size = 4096;
  cfg.cross_fraction = cross_fraction;
  cfg.cross_width = 2;
  cfg.opts = core::ProtocolOptions::spindle();
  cfg.sequencer_mode = mode;
  // Fabric one-sided atomics are serial-engine-only (v1), and the grant
  // latency comparison must not be confounded by engine mode anyway.
  cfg.sim_threads = 1;
  cfg.seed = 1;
  return cfg;
}

std::string pct(double f) {
  return std::to_string(static_cast<int>(f * 100 + 0.5)) + "%";
}

/// The scale-independent projection-identity gate cell (mirrors the
/// two-shard determinism-lock configuration of shard_test).
ShardedConfig gate_config(core::SequencerKind mode) {
  ShardedConfig cfg = base_config(2, 0.10, mode);
  cfg.nodes = 6;
  cfg.messages_per_sender = 60;
  cfg.message_size = 512;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

int main() {
  Table t("Cross-shard sequencer: SST polling vs one-sided FAA ticket "
          "(8 nodes, 4KB messages)",
          {"shards", "cross", "mode", "grant p50 us", "grant p99 us",
           "tput GB/s", "grants", "wall s"});
  BenchReport report("atomics_seq");
  report.set_provenance(1, std::max<std::size_t>(scaled(200), 100));
  report.set_shard_provenance(8, 0.50);
  // Atomics cost-model constants in effect (DESIGN.md §3g calibration).
  const net::TimingModel timing{};
  report.add_metric("timing_atomic_unit_occupancy_ns",
                    static_cast<double>(timing.atomic_unit_occupancy));
  report.add_metric("timing_post_cpu_first_ns",
                    static_cast<double>(timing.post_cpu_first));
  report.add_metric("timing_post_cpu_next_ns",
                    static_cast<double>(timing.post_cpu_next));
  report.add_metric("timing_wire_base_latency_ns",
                    static_cast<double>(timing.wire_base_latency));

  // --- Projection-identity gate (fixed-size cell, both arms) -------------
  const ShardedResult gate_sst =
      workload::run_sharded(gate_config(core::SequencerKind::sst));
  const ShardedResult gate_faa =
      workload::run_sharded(gate_config(core::SequencerKind::faa));
  bool projection_drift = !gate_sst.completed || !gate_faa.completed ||
                          gate_sst.shard_projection_digests !=
                              gate_faa.shard_projection_digests;
  report.add_metric("gate_projection_drift", projection_drift ? 1 : 0);
  for (std::size_t sh = 0;
       sh < gate_sst.shard_projection_digests.size() && !projection_drift;
       ++sh) {
    report.add_metric(
        "gate_proj_digest_lo32_shard" + std::to_string(sh),
        static_cast<double>(gate_sst.shard_projection_digests[sh] &
                            0xffffffffu));
  }

  // --- k x cross-fraction sweep, SST and FAA arms ------------------------
  bool incomplete = false;
  bool faa_always_faster = true;
  for (std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (double cross : {0.01, 0.10, 0.50}) {
      std::uint64_t p50[2] = {0, 0};
      std::uint64_t grants[2] = {0, 0};
      for (const core::SequencerKind mode :
           {core::SequencerKind::sst, core::SequencerKind::faa}) {
        const bool faa = mode == core::SequencerKind::faa;
        const ShardedResult r =
            workload::run_sharded(base_config(shards, cross, mode));
        incomplete = incomplete || !r.completed;
        p50[faa ? 1 : 0] = r.grant_latency_ns.median();
        grants[faa ? 1 : 0] = r.grants_issued;
        const std::string label = std::string(faa ? "faa" : "sst") + "_k" +
                                  std::to_string(shards) + "_x" + pct(cross);
        t.row({Table::integer(shards), pct(cross), faa ? "faa" : "sst",
               Table::num(static_cast<double>(r.grant_latency_ns.median()) /
                              1e3, 2),
               Table::num(static_cast<double>(
                              r.grant_latency_ns.percentile(99)) / 1e3, 2),
               gbps(r.throughput_gbps), Table::integer(r.grants_issued),
               Table::num(r.wall_seconds, 2) +
                   (r.completed ? "" : " [INCOMPLETE: watchdog tripped]")});
        report.add_run(label, r);
        report.add_metric("grant_p50_us_" + label,
                          static_cast<double>(r.grant_latency_ns.median()) /
                              1e3);
        report.add_metric("grant_p99_us_" + label,
                          static_cast<double>(
                              r.grant_latency_ns.percentile(99)) / 1e3);
        report.add_metric("tput_gbps_" + label, r.throughput_gbps);
      }
      if (p50[1] >= p50[0]) faa_always_faster = false;
      // Both transports must grant exactly one gsn per cross of the
      // schedule — a FAA ticket skipped or double-consumed would show here.
      if (grants[0] != grants[1]) projection_drift = true;
      report.add_metric("faa_speedup_k" + std::to_string(shards) + "_x" +
                            pct(cross),
                        p50[1] > 0 ? static_cast<double>(p50[0]) /
                                         static_cast<double>(p50[1])
                                   : 0);
    }
  }
  t.print();
  report.add_metric("faa_median_below_sst_everywhere",
                    faa_always_faster ? 1 : 0);
  report.write();

  if (projection_drift) {
    std::fprintf(stderr,
                 "atomics_seq: PROJECTION DRIFT — the SST and FAA arms of "
                 "the gate cell disagree on a per-shard merged projection\n");
    return 1;
  }
  if (!faa_always_faster) {
    std::fprintf(stderr,
                 "atomics_seq: FAA median grant latency failed to beat SST "
                 "in at least one cell\n");
    return 1;
  }
  if (incomplete) {
    std::fprintf(stderr, "atomics_seq: a cell tripped the watchdog\n");
    return 1;
  }
  return 0;
}
