// Figure 17: final delivery latency (send -> delivered everywhere) for the
// single subgroup with all optimizations, vs the baseline.
//
// Paper headline: although the optimizations target throughput (and use
// batching!), latency drops by nearly two orders of magnitude relative to
// the baseline.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  Table t("Figure 17: final latency (10KB), baseline vs all optimizations",
          {"pattern", "nodes", "baseline med (us)", "spindle med (us)",
           "spindle p99 (us)", "improvement"});
  for (auto pattern : {SenderPattern::all, SenderPattern::half,
                       SenderPattern::one}) {
    for (std::size_t n : node_sweep()) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = pattern;
      cfg.message_size = 10240;

      cfg.opts = core::ProtocolOptions::baseline();
      cfg.messages_per_sender = scaled(200);
      auto base = workload::run_experiment(cfg);

      cfg.opts = core::ProtocolOptions::spindle();
      cfg.messages_per_sender = scaled(500);
      auto opt = workload::run_experiment(cfg);

      t.row({pattern_name(pattern), Table::integer(n),
             Table::num(base.median_latency_us, 1),
             Table::num(opt.median_latency_us, 1),
             Table::num(opt.p99_latency_us, 1),
             Table::num(base.median_latency_us /
                        std::max(opt.median_latency_us, 0.001), 0) + "x"});
    }
  }
  t.print();
  std::printf("\npaper: latency improves by up to ~two orders of magnitude\n");
  return 0;
}
