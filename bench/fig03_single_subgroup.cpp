// Figure 3 + §4.1.1 commentary: single subgroup, 10KB messages, continuous
// sending; opportunistic batching vs the baseline, for all/half/one
// senders, subgroup sizes 2..16.
//
// Paper headlines: batching alone outperforms the baseline by ~9X (all
// senders), ~6X (half), ~3X (one) on average; 16X at 16 senders; peak
// 8.03 GB/s at 11 members (64.2% utilization). The §4.1.1 counters for the
// 16-sender case: RDMA writes 18.2M -> 1.1M, polling-thread posting time
// 64.84s -> 4.29s, sender wait 97.6% -> 52.7% of runtime.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  core::ProtocolOptions batching = core::ProtocolOptions::baseline();
  batching.send_batching = true;
  batching.receive_batching = true;
  batching.delivery_batching = true;

  Table t("Figure 3: single subgroup, 10KB, batching vs baseline (GB/s)",
          {"pattern", "nodes", "baseline", "batching", "speedup", "paper"});
  const char* paper_hint[] = {"~9X avg, 16X @16", "~6X avg", "~3X avg"};
  int pi = 0;
  ExperimentResult batch16;
  metrics::ProtocolCounters base16;
  sim::Nanos base16_makespan = 0;
  BenchReport report("fig03_single_subgroup");
  report.set_provenance(ExperimentConfig{}.seed,
                        std::max<std::size_t>(scaled(2000), 300));

  for (auto pattern : {SenderPattern::all, SenderPattern::half,
                       SenderPattern::one}) {
    for (std::size_t n : node_sweep()) {
      ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.senders = pattern;
      cfg.message_size = 10240;

      // Keep counts above ~3 windows so the sender-wait statistic reflects
      // the steady state (the ring must actually fill).
      cfg.opts = core::ProtocolOptions::baseline();
      cfg.messages_per_sender = std::max<std::size_t>(scaled(800), 300);
      auto base = workload::run_averaged(cfg, 2);

      cfg.opts = batching;
      cfg.messages_per_sender = std::max<std::size_t>(scaled(2000), 300);
      auto opt = workload::run_averaged(cfg, 2);

      const std::string label =
          std::string(pattern_name(pattern)) + "/" + std::to_string(n);
      report.add_run(label + "/baseline", base);
      report.add_run(label + "/batching", opt);
      t.row({pattern_name(pattern), Table::integer(n),
             gbps(base.mean_gbps) + "+-" + gbps(base.stddev_gbps),
             gbps(opt.mean_gbps) + "+-" + gbps(opt.stddev_gbps),
             Table::num(opt.mean_gbps / base.mean_gbps, 1) + "x",
             (n == 16 ? paper_hint[pi] : "")});
      if (pattern == SenderPattern::all && n == 16) {
        batch16 = opt.last;
        base16 = base.last.stats.total;
        base16_makespan = base.last.makespan;
      }
    }
    ++pi;
  }
  t.print();
  report.write();

  // §4.1.1 insight counters, 16 senders. The paper's absolute counts are
  // for 1M messages/sender; we report per-message and fractional values.
  const auto& ot = batch16.stats.total;
  const double base_msgs = static_cast<double>(base16.messages_sent);
  const double opt_msgs = static_cast<double>(ot.messages_sent);
  Table c("Sec 4.1.1 counters (16 senders): baseline vs batching",
          {"metric", "baseline", "batching", "paper"});
  c.row({"RDMA writes per message sent",
         Table::num(static_cast<double>(base16.rdma_writes_posted) / base_msgs, 1),
         Table::num(static_cast<double>(ot.rdma_writes_posted) / opt_msgs, 1),
         "18.2M -> 1.1M total"});
  c.row({"posting time (% of runtime/node)",
         Table::num(100.0 * static_cast<double>(base16.post_cpu) / 16.0 /
                    static_cast<double>(base16_makespan), 1),
         Table::num(100.0 * static_cast<double>(ot.post_cpu) / 16.0 /
                    static_cast<double>(batch16.makespan), 1),
         "64.84s -> 4.29s"});
  c.row({"sender wait (% of runtime)",
         Table::num(100.0 * static_cast<double>(base16.sender_wait) / 16.0 /
                    static_cast<double>(base16_makespan), 1),
         Table::num(100.0 * static_cast<double>(ot.sender_wait) / 16.0 /
                    static_cast<double>(batch16.makespan), 1),
         "97.6% -> 52.7%"});
  c.print();
  return 0;
}
