// Figure 13 + end of §4.1.3: multiple *active* subgroups — every node
// belongs to and sends in k overlapping subgroups — with all optimizations,
// against the baseline.
//
// Paper headlines: with batching alone, performance drops considerably as
// active subgroups are added (the polling thread spends ever more time
// posting writes for the different subgroups); efficient thread
// synchronization resolves most of that, giving excellent scaling that
// remains stable across subgroup counts.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

int main() {
  Table t("Figure 13: multiple active subgroups (16 nodes, 10KB, GB/s)",
          {"active subgroups", "baseline", "batching only", "all opts",
           "paper"});
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                        std::size_t{10}}) {
    ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.subgroups = k;
    cfg.active_subgroups = k;

    cfg.opts = core::ProtocolOptions::baseline();
    cfg.messages_per_sender = scaled(50);
    auto base = workload::run_experiment(cfg);

    cfg.opts = core::ProtocolOptions::spindle();
    cfg.opts.early_lock_release = false;
    cfg.messages_per_sender = scaled(150);
    auto batch = workload::run_experiment(cfg);

    cfg.opts = core::ProtocolOptions::spindle();
    auto full = workload::run_experiment(cfg);

    t.row({Table::integer(k), gbps(base.throughput_gbps),
           gbps(batch.throughput_gbps), gbps(full.throughput_gbps),
           k == 10 ? "stable scaling with all opts" : ""});
  }
  t.print();
  return 0;
}
