// Figure 13 + end of §4.1.3: multiple *active* subgroups — every node
// belongs to and sends in k overlapping subgroups — with all optimizations,
// against the baseline.
//
// Paper headlines: with batching alone, performance drops considerably as
// active subgroups are added (the polling thread spends ever more time
// posting writes for the different subgroups); efficient thread
// synchronization resolves most of that, giving excellent scaling that
// remains stable across subgroup counts.
//
// Second sweep (the scheduling-discipline study): 1 *hot* subgroup plus k
// *cold* ones that never send. Under strict round-robin the polling thread
// pays a full lap of cold-group evaluations per round, so the hot group's
// delivery rate decays with k; under `drr` the cold groups demote to the
// low-frequency scan lane after a few quiet rounds and the hot group keeps
// nearly all of the polling-thread CPU. Results (both disciplines, with
// seed/env provenance) go to BENCH_fig13_multi_active.json.

#include "bench_util.hpp"

using namespace spindle;
using namespace spindle::bench;

namespace {

/// Sum of scan-lane demotions across the cold subgroups (hot is sg0).
std::uint64_t cold_demotions(const ExperimentResult& r) {
  std::uint64_t total = 0;
  for (const auto& sg : r.stats.subgroups) {
    if (sg.id != 0) total += sg.sched_demotions;
  }
  return total;
}

}  // namespace

int main() {
  Table t("Figure 13: multiple active subgroups (16 nodes, 10KB, GB/s)",
          {"active subgroups", "baseline", "batching only", "all opts",
           "paper"});
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                        std::size_t{10}}) {
    ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 10240;
    cfg.subgroups = k;
    cfg.active_subgroups = k;

    cfg.opts = core::ProtocolOptions::baseline();
    cfg.messages_per_sender = scaled(50);
    auto base = workload::run_experiment(cfg);

    cfg.opts = core::ProtocolOptions::spindle();
    cfg.opts.early_lock_release = false;
    cfg.messages_per_sender = scaled(150);
    auto batch = workload::run_experiment(cfg);

    cfg.opts = core::ProtocolOptions::spindle();
    auto full = workload::run_experiment(cfg);

    t.row({Table::integer(k), gbps(base.throughput_gbps),
           gbps(batch.throughput_gbps), gbps(full.throughput_gbps),
           k == 10 ? "stable scaling with all opts" : ""});
  }
  t.print();

  // Scheduling-discipline sweep: 1 hot + k cold subgroups, strict-RR vs
  // DRR. Small messages and a small window keep the hot pipeline
  // round-time-gated (so the cold lap actually costs throughput) and the
  // k=64 point within memory (every node maps a window of slots for every
  // subgroup it belongs to). The 500us scan lane is ~20x a strict-RR
  // round here — long enough that demoted groups are effectively free.
  constexpr std::uint64_t kSeed = 42;
  const std::size_t kMessages = scaled(200);
  BenchReport report("fig13_multi_active");
  report.set_provenance(kSeed, kMessages);

  Table d("Figure 13b: 1 hot + k cold subgroups (16 nodes, 1KB, kmsg/s/node)",
          {"cold subgroups", "strict_rr", "drr", "speedup",
           "cold demotions"});
  for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                        std::size_t{64}}) {
    ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.senders = SenderPattern::all;
    cfg.message_size = 1024;
    cfg.opts = core::ProtocolOptions::spindle();
    cfg.opts.max_msg_size = 1024;
    cfg.opts.window_size = 8;
    cfg.subgroups = 1 + k;
    cfg.active_subgroups = 1;
    cfg.active_weight = 4;
    cfg.scan_interval = sim::micros(500);
    cfg.messages_per_sender = kMessages;
    cfg.seed = kSeed;

    cfg.discipline = sst::Discipline::strict_rr;
    auto rr = workload::run_experiment(cfg);

    cfg.discipline = sst::Discipline::drr;
    auto drr = workload::run_experiment(cfg);

    const double speedup =
        rr.delivery_rate_per_node > 0
            ? drr.delivery_rate_per_node / rr.delivery_rate_per_node
            : 0;
    const std::string kk = std::to_string(k);
    report.add_run("strict_rr/k=" + kk, rr);
    report.add_run("drr/k=" + kk, drr);
    report.add_metric("speedup_k" + kk, speedup);
    d.row({Table::integer(k), Table::num(rr.delivery_rate_per_node / 1e3, 1),
           Table::num(drr.delivery_rate_per_node / 1e3, 1),
           Table::num(speedup, 2) + "x" + check_completed(rr) +
               check_completed(drr),
           Table::integer(cold_demotions(drr))});
  }
  d.print();
  report.write();
  return 0;
}
