// Sharded-domain scaling: one core::OrderingDomain, k shard subgroups over
// the same 8 members, every node sending a key-hashed stream. Two sweeps in
// one report:
//
//  - shard-count scaling at 0% cross-shard traffic: aggregate delivered
//    throughput must rise monotonically with k (each shard is an
//    independent window + round-robin pipeline, so the window-bound k = 1
//    configuration gains aggregate in-flight capacity with every shard);
//  - cross-shard sensitivity at 1% / 10% / 50%: every cross pays a
//    sequencer round trip and a per-shard copy fan-out, and holds singles
//    behind its merge point — the curve quantifies how fast the gain
//    erodes.
//
// The k = 1 cell doubles as the single-shard digest-drift gate: the same
// schedule is run once through the OrderingDomain and once directly against
// an identically-configured subgroup (workload::run_sharded's plain arm).
// A k = 1 domain is contractually a zero-cost pass-through, so the two
// delivery digests (per-node merged streams: order, timestamps, payload
// tags) must match bit-for-bit; the bench exits non-zero when they don't,
// making the smoke run a correctness gate as well as a perf probe.

#include <algorithm>
#include <cstdint>
#include <string>

#include "bench_util.hpp"
#include "workload/sharded.hpp"

using namespace spindle;
using namespace spindle::bench;
using workload::ShardedConfig;
using workload::ShardedResult;

namespace {

ShardedConfig base_config(std::size_t shards, double cross_fraction) {
  ShardedConfig cfg;
  cfg.nodes = 8;
  cfg.shards = shards;
  cfg.messages_per_sender = std::max<std::size_t>(scaled(240), 120);
  cfg.message_size = 4096;
  cfg.cross_fraction = cross_fraction;
  cfg.cross_width = 2;
  cfg.opts = core::ProtocolOptions::spindle();
  // Keep k = 1 window-bound (the sharding headroom this bench measures):
  // with a 16-slot window one subgroup cannot keep the pipeline full, and
  // every extra shard adds an independent window's worth of in-flight
  // capacity.
  cfg.opts.window_size = 2;
  cfg.seed = 1;
  return cfg;
}

std::string pct(double f) {
  return std::to_string(static_cast<int>(f * 100 + 0.5)) + "%";
}

}  // namespace

int main() {
  Table t("Sharded-domain scaling (8 nodes, all senders, 4KB messages)",
          {"shards", "cross", "tput GB/s", "cross p50 us", "grants", "wall s"});
  BenchReport report("shard_scaling");
  report.set_provenance(1, std::max<std::size_t>(scaled(240), 120));
  report.set_shard_provenance(8, 0.50);

  // --- Single-shard digest-drift gate -----------------------------------
  ShardedConfig k1 = base_config(1, 0.0);
  const ShardedResult domain_arm = workload::run_sharded(k1);
  k1.use_domain = false;
  const ShardedResult plain_arm = workload::run_sharded(k1);
  const bool drift = !domain_arm.completed || !plain_arm.completed ||
                     domain_arm.delivery_digest != plain_arm.delivery_digest;
  report.add_metric("k1_domain_digest_lo32",
                    static_cast<double>(domain_arm.delivery_digest & 0xffffffffu));
  report.add_metric("k1_plain_digest_lo32",
                    static_cast<double>(plain_arm.delivery_digest & 0xffffffffu));
  report.add_metric("k1_digest_drift", drift ? 1 : 0);

  // --- Shard count x cross-shard fraction sweep -------------------------
  double tput_at_zero_cross[4] = {0, 0, 0, 0};
  bool incomplete = false;
  std::size_t ki = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    for (double cross : {0.0, 0.01, 0.10, 0.50}) {
      if (shards == 1 && cross > 0) continue;  // no cross path at k = 1
      const ShardedResult r =
          shards == 1 && cross == 0.0
              ? domain_arm  // reuse the gate's domain arm
              : workload::run_sharded(base_config(shards, cross));
      if (cross == 0.0) tput_at_zero_cross[ki] = r.throughput_gbps;
      incomplete = incomplete || !r.completed;
      const std::string label =
          "k" + std::to_string(shards) + "_x" + pct(cross);
      t.row({Table::integer(shards), pct(cross), gbps(r.throughput_gbps),
             Table::num(static_cast<double>(
                            r.cross_latency_ns.median()) / 1e3, 1),
             Table::integer(r.grants_issued),
             Table::num(r.wall_seconds, 2) +
                 (r.completed ? "" : " [INCOMPLETE: watchdog tripped]")});
      report.add_run(label, r);
      report.add_metric("tput_gbps_" + label, r.throughput_gbps);
      if (cross > 0) {
        report.add_metric("cross_p50_us_" + label,
                          static_cast<double>(r.cross_latency_ns.median()) /
                              1e3);
      }
    }
    ++ki;
  }
  t.print();

  // Acceptance gate: aggregate delivered throughput at 0% cross rises
  // monotonically with the shard count.
  bool monotone = true;
  for (std::size_t i = 1; i < 4; ++i) {
    monotone = monotone && tput_at_zero_cross[i] > tput_at_zero_cross[i - 1];
  }
  report.add_metric("zero_cross_monotone", monotone ? 1 : 0);
  report.add_metric(
      "zero_cross_k8_over_k1",
      tput_at_zero_cross[0] > 0 ? tput_at_zero_cross[3] / tput_at_zero_cross[0]
                                : 0);
  report.write();

  if (drift) {
    std::fprintf(stderr,
                 "shard_scaling: DIGEST DRIFT — k=1 OrderingDomain run "
                 "diverged from the plain single-subgroup run\n");
    return 1;
  }
  if (!monotone) {
    std::fprintf(stderr,
                 "shard_scaling: 0%%-cross throughput is not monotone in the "
                 "shard count (%.3f, %.3f, %.3f, %.3f GB/s)\n",
                 tput_at_zero_cross[0], tput_at_zero_cross[1],
                 tput_at_zero_cross[2], tput_at_zero_cross[3]);
    return 1;
  }
  if (incomplete) {
    std::fprintf(stderr, "shard_scaling: a cell tripped the watchdog\n");
    return 1;
  }
  return 0;
}
