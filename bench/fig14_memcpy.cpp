// Figure 14: latency and bandwidth of memcpy vs data size, measured on
// *this* host with google-benchmark (the one experiment that needs no
// simulation), next to the simulator's memcpy cost model.
//
// Paper headline: latency stays low up to a few KB, then deteriorates for
// large sizes — which is why copying small messages in/out of the ring
// (§4.4) is affordable.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/options.hpp"
#include "sim/time.hpp"

namespace {

void BM_memcpy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<char> src(size, 'x');
  std::vector<char> dst(size);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), size);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_memcpy)->RangeMultiplier(4)->Range(64, 16 << 20);

void BM_sim_memcpy_model(benchmark::State& state) {
  // The simulator's cost model for the same sizes (reported as the
  // simulated nanoseconds per copy, for calibration comparison).
  spindle::core::CpuModel cpu;
  const auto size = static_cast<std::size_t>(state.range(0));
  spindle::sim::Nanos total = 0;
  for (auto _ : state) {
    total += cpu.memcpy_cost(size);
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_ns_per_copy"] =
      static_cast<double>(cpu.memcpy_cost(size));
}
BENCHMARK(BM_sim_memcpy_model)->RangeMultiplier(4)->Range(64, 16 << 20);

}  // namespace

BENCHMARK_MAIN();
