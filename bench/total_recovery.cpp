// Total-failure recovery bench: a persistent group under continuous load
// loses every member inside one failure window, halts, and a subset of
// the members restarts from their durable versioned logs. Measures the
// outage phases — crash to halt, restart to the recovery-view install
// (version-vector exchange, LCP agreement, ragged trim, replay), install
// to the first fresh delivery — and the durability ledger: records kept
// by the longest common durable prefix vs. the ragged write-behind tail
// lost. Sweeps the group size, how long the group ran before dying (the
// durable-log length), and how many members come back.

#include <cstdio>

#include "bench_util.hpp"
#include "workload/table.hpp"
#include "workload/total_recovery.hpp"

namespace {

using spindle::workload::Table;
using spindle::workload::TotalRecoveryConfig;
using spindle::workload::TotalRecoveryResult;
using spindle::workload::run_total_recovery;

std::string us(spindle::sim::Nanos ns) {
  return Table::num(static_cast<double>(ns) / 1000.0, 1);
}

void record(spindle::bench::BenchReport& report, const std::string& label,
            const TotalRecoveryResult& r) {
  report.add_metric(label + "/halt_us",
                    static_cast<double>(r.halt_ns) / 1e3);
  report.add_metric(label + "/install_us",
                    static_cast<double>(r.install_ns) / 1e3);
  report.add_metric(label + "/first_new_us",
                    static_cast<double>(r.first_new_delivery_ns) / 1e3);
  report.add_metric(label + "/lcp_records",
                    static_cast<double>(r.lcp_records));
  report.add_metric(label + "/lost_records",
                    static_cast<double>(r.lost_records));
}

const std::vector<std::string> kColumns = {
    "halt_us", "install_us", "first_new_us",
    "lcp_rec", "lost_rec", "replayed", "fresh"};

std::vector<std::string> row_of(const TotalRecoveryResult& r) {
  return {us(r.halt_ns),
          us(r.install_ns),
          us(r.first_new_delivery_ns),
          Table::integer(r.lcp_records),
          Table::integer(r.lost_records),
          Table::integer(r.replayed),
          Table::integer(r.delivered_after)};
}

}  // namespace

int main() {
  spindle::bench::BenchReport report("total_recovery");
  {
    const TotalRecoveryConfig base;
    report.set_provenance(
        base.seed, static_cast<std::uint64_t>(base.crash_at /
                                              base.send_interval));
  }

  {
    Table t("Total-failure recovery vs. group size (all members restart)",
            [] {
              std::vector<std::string> c = {"nodes"};
              c.insert(c.end(), kColumns.begin(), kColumns.end());
              return c;
            }());
    for (const std::size_t nodes : {3, 4, 6, 8}) {
      TotalRecoveryConfig cfg;
      cfg.nodes = nodes;
      cfg.restarters = nodes;
      const TotalRecoveryResult r = run_total_recovery(cfg);
      record(report, "nodes_" + std::to_string(nodes), r);
      std::vector<std::string> row = {Table::integer(nodes)};
      const auto vals = row_of(r);
      row.insert(row.end(), vals.begin(), vals.end());
      t.row(row);
    }
    t.print();
  }

  {
    Table t("Durability ledger vs. pre-crash runtime (4 nodes)",
            [] {
              std::vector<std::string> c = {"crash_at_us"};
              c.insert(c.end(), kColumns.begin(), kColumns.end());
              return c;
            }());
    for (const spindle::sim::Nanos crash_at :
         {spindle::sim::micros(500), spindle::sim::millis(1),
          spindle::sim::millis(2), spindle::sim::millis(4)}) {
      TotalRecoveryConfig cfg;
      cfg.crash_at = crash_at;
      const TotalRecoveryResult r = run_total_recovery(cfg);
      record(report, "crash_at_us_" + us(crash_at), r);
      std::vector<std::string> row = {us(crash_at)};
      const auto vals = row_of(r);
      row.insert(row.end(), vals.begin(), vals.end());
      t.row(row);
    }
    t.print();
  }

  {
    Table t("Recovery vs. rejoining quorum (4 nodes)",
            [] {
              std::vector<std::string> c = {"restarters"};
              c.insert(c.end(), kColumns.begin(), kColumns.end());
              return c;
            }());
    for (const std::size_t restarters : {4, 3, 2}) {
      TotalRecoveryConfig cfg;
      cfg.restarters = restarters;
      const TotalRecoveryResult r = run_total_recovery(cfg);
      record(report, "restarters_" + std::to_string(restarters), r);
      std::vector<std::string> row = {Table::integer(restarters)};
      const auto vals = row_of(r);
      row.insert(row.end(), vals.begin(), vals.end());
      t.row(row);
    }
    t.print();
  }

  report.write();
  return 0;
}
